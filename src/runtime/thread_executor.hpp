#pragma once
// Shared-memory runtime: real std::thread workers driving a problem-heap
// engine (the counterpart of the paper's Sequent implementation).
//
// The engine is internally synchronized (per-shard locks plus a
// flat-combining commit path, DESIGN.md §12), so this executor holds no
// engine-wrapping mutex at all: acquires on different shards proceed
// concurrently, and a commit either rides a concurrent combiner or becomes
// the combiner itself inside the engine.  What remains up here is pure
// scheduling policy — local run queues, work stealing, targeted wakeups —
// plus a small wake mutex that exists only to park starving workers on a
// condition variable without lost wakeups.  The heavy compute phase — child
// generation and serial subtree searches — runs with no lock of any kind
// held, which is where the real parallelism lives.
//
// Batched scheduling (paper §6's contention remedy): each worker keeps a
// small local run buffer filled by one acquire_batch call and a local
// completion buffer flushed through one commit_batch call, so the engine's
// serialized sections are entered once per batch instead of twice per unit.
// Wakeups are targeted: a worker that commits or acquires work wakes only
// as many sleepers as there are units actually left on the queues (no
// notify_all thundering herd), and a starving worker spins briefly before
// sleeping so it can catch work released a few microseconds later without a
// futex round trip.  Every worker keeps a SchedulerStats block; the engine's
// own lock accounting (EngineLockStats) is folded into the aggregate after
// the join, so contention is measurable, not guessed (bench_scheduler
// consumes exactly these counters).
//
// Transposition tables: the engine's EngineConfig::shared_table (one
// lock-free table, every worker probes/stores it) is the production setup.
// use_per_thread_tables() is the bench control: each worker gets a private
// table of the same size, isolating the benefit of *sharing* knowledge from
// the benefit of merely *having* a table.  The run report carries the
// aggregate probe/hit counters either way.
//
// Works with any engine exposing the core::Engine protocol; engines without
// the batch forms (acquire_batch/commit_batch) are driven one unit at a
// time through the single-item calls.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "runtime/topology.hpp"
#include "search/concurrent_ttable.hpp"
#include "util/check.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ers::runtime {

/// Per-worker scheduler observability, merged across workers into the run
/// report.  Times come from steady_clock; on a loaded machine lock_wait_ns
/// includes preemption of the lock holder, which is precisely the
/// interference a real shared heap suffers.
struct SchedulerStats {
  /// Engine lock sections.  Workers no longer hold an executor-side engine
  /// mutex, so these three stay zero in the per-worker blocks and are
  /// populated by folding the engine's own EngineLockStats into the
  /// aggregate after the join (run() does this; benches read the totals
  /// exactly as before).
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_wait_ns = 0;  ///< blocked entering a serialized section
  std::uint64_t lock_hold_ns = 0;  ///< inside a serialized section
  /// Time inside the compute phase (the busy timeline).  Measured — from
  /// the same clock readings the trace spans use, so the two totals agree
  /// exactly — only while a trace session is attached; 0 otherwise, keeping
  /// the untraced hot path free of per-unit clock reads.
  std::uint64_t compute_ns = 0;
  std::uint64_t units = 0;         ///< work units computed and committed
  std::uint64_t batches = 0;       ///< non-empty acquire_batch calls
  std::uint64_t wakeups_issued = 0;  ///< targeted notify_one calls
  std::uint64_t sleeps = 0;          ///< times a worker parked on the cv
  // Work-stealing counters (sharded scheduler only; zero on the single-heap
  // path).  A steal attempt is one victim probe; a hit moved one unit from
  // a peer's local run queue; misses are attempts - hits.
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_hits = 0;
  /// Commit flushes this worker never had to apply itself: a concurrent
  /// combiner picked up the published record and applied it (the
  /// flat-combining path absorbed the contention the old deferred
  /// try_lock flush used to dodge).  Sharded scheduler only.
  std::uint64_t flush_deferrals = 0;
  /// Refills that fell through an empty home shard to the global scan.
  std::uint64_t global_refills = 0;

  /// Misses are derived, not stored.  Stats blocks can be merged in any
  /// order (a partially merged block may transiently carry hits from a
  /// worker whose attempts were not folded in yet), so clamp instead of
  /// letting the subtraction wrap to ~2^64.
  [[nodiscard]] std::uint64_t steal_misses() const noexcept {
    return steal_hits > steal_attempts ? 0 : steal_attempts - steal_hits;
  }
  /// Distribution views (obs/histogram.hpp), per-worker single-writer and
  /// merged exactly like the scalar counters.  batch_hist records every
  /// acquired batch's size (its count equals `batches`, so the scalar
  /// totals the benches read are untouched by the histogram migration).
  /// compute_hist records per-unit compute-span ns and commit_hist
  /// per-flush commit latency ns — both filled only while a trace session
  /// is attached, from the same clock readings the spans and compute_ns
  /// use, keeping the untraced hot path free of per-unit clock reads.
  obs::Histogram batch_hist;
  obs::Histogram compute_hist;
  obs::Histogram commit_hist;

  void record_batch(std::size_t size) {
    ++batches;
    batch_hist.record(size);
  }

  /// The one way per-worker blocks fold into an aggregate (the executor and
  /// every bench go through here, never field-by-field addition).
  void merge(const SchedulerStats& o) {
    lock_acquisitions += o.lock_acquisitions;
    lock_wait_ns += o.lock_wait_ns;
    lock_hold_ns += o.lock_hold_ns;
    compute_ns += o.compute_ns;
    units += o.units;
    batches += o.batches;
    wakeups_issued += o.wakeups_issued;
    sleeps += o.sleeps;
    steal_attempts += o.steal_attempts;
    steal_hits += o.steal_hits;
    flush_deferrals += o.flush_deferrals;
    global_refills += o.global_refills;
    batch_hist.merge(o.batch_hist);
    compute_hist.merge(o.compute_hist);
    commit_hist.merge(o.commit_hist);
  }

  [[nodiscard]] double mean_batch_size() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(units) /
                              static_cast<double>(batches);
  }
};

struct ThreadRunReport {
  std::uint64_t units = 0;
  int threads = 0;
  int shards = 1;  ///< problem-heap shards the run was scheduled over
  std::uint64_t tt_probes = 0;  ///< table probes across all workers
  std::uint64_t tt_hits = 0;    ///< validated, depth-covering hits
  std::uint64_t elapsed_ns = 0;  ///< wall time of the run() call
  SchedulerStats sched;          ///< aggregated across workers + engine locks

  // Engine-internal lock accounting (per-shard lock sections plus the
  // flat-combining commit path), already folded into sched.lock_* above;
  // kept verbatim here for per-shard metrics export and the benches.
  std::vector<std::uint64_t> shard_lock_acquisitions;
  std::vector<std::uint64_t> shard_lock_wait_ns;
  std::vector<std::uint64_t> shard_lock_hold_ns;
  std::uint64_t combine_batches = 0;       ///< combiner drain rounds
  std::uint64_t combine_records = 0;       ///< publish records applied
  std::uint64_t combine_entries = 0;       ///< commit entries in those records
  std::uint64_t combine_peer_applied = 0;  ///< records applied by a peer combiner
  std::uint64_t combine_wait_ns = 0;       ///< publisher blocked time
  /// Frontier-truncation / epoch-publication counters (DESIGN.md §13).
  std::uint64_t truncated_records = 0;
  std::uint64_t frontier_continuations = 0;
  std::uint64_t root_publishes = 0;
  std::uint64_t root_publish_retries = 0;
  std::uint64_t root_validate_retries = 0;
  /// Node-storage occupancy at the end of the run (engines exposing
  /// mem_stats(); zero otherwise) — arena/slab bytes and cold-record
  /// reclamation totals (DESIGN.md §15).
  core::EngineMemStats mem;
  /// Wasted-work attribution ledger (engines exposing waste_stats(); zero
  /// otherwise).  Unit counts are always exact; compute_ns is populated
  /// only on traced runs — untraced thread workers never read the clock,
  /// so they stamp 0 ns per unit (DESIGN.md §16).
  core::EngineWasteStats waste;

  [[nodiscard]] double tt_hit_rate() const noexcept {
    return tt_probes == 0
               ? 0.0
               : static_cast<double>(tt_hits) / static_cast<double>(tt_probes);
  }
  /// Fraction of total worker-time spent blocked on heap locks — the
  /// contention number batching and per-shard locking exist to shrink.
  [[nodiscard]] double lock_wait_share() const noexcept {
    const double total = static_cast<double>(elapsed_ns) *
                         static_cast<double>(threads);
    return total > 0 ? static_cast<double>(sched.lock_wait_ns) / total : 0.0;
  }
  /// Fraction of total worker-time spent *inside* engine lock sections.
  [[nodiscard]] double lock_hold_share() const noexcept {
    const double total = static_cast<double>(elapsed_ns) *
                         static_cast<double>(threads);
    return total > 0 ? static_cast<double>(sched.lock_hold_ns) / total : 0.0;
  }
};

template <typename EngineT>
class ThreadExecutor {
 public:
  explicit ThreadExecutor(int threads) : threads_(threads) {
    ERS_CHECK(threads >= 1);
  }

  /// Units a worker pulls per engine heap access (its local run-buffer
  /// size).  1 reproduces the unbatched scheduler exactly.
  ThreadExecutor& with_batch_size(int k) noexcept {
    ERS_CHECK(k >= 1);
    batch_size_ = k;
    return *this;
  }

  /// Bench control: give each worker a private ConcurrentTranspositionTable
  /// of 2^size_log2 slots, overriding the engine's shared table for the
  /// compute phase.  Tables live for one run() and are then discarded.
  ThreadExecutor& use_per_thread_tables(int size_log2) noexcept {
    per_thread_table_log2_ = size_log2;
    return *this;
  }

  /// Attach a trace session: every worker records its scheduling events
  /// (compute spans, steals, refills, sleeps, wakeups) into its own ring,
  /// stamped with steady-clock ns from the session epoch; the engine's lock
  /// wait/hold spans land on the same per-worker rings via the session's
  /// thread-local tracer, which each worker installs for its lifetime.
  /// The session must outlive run(); read it only after run() returns.
  /// Null (the default) keeps the untraced hot path: no clock reads, no
  /// stores.  Trace spans reuse the very timestamps the stats arithmetic
  /// takes, so per-worker trace totals and the run report agree exactly up
  /// to ring-buffer drops.
  ThreadExecutor& with_trace(obs::TraceSession* session) noexcept {
    trace_ = session;
    return *this;
  }

  /// Override the detected CPU topology (tests drive the placement logic
  /// on synthetic multi-node layouts).  The default — detect() at run() —
  /// reads sysfs and degenerates to round-robin on single-node machines.
  ThreadExecutor& with_topology(CpuTopology topo) {
    topology_ = std::move(topo);
    has_topology_ = true;
    return *this;
  }

  /// Pin each stealing worker to its planned CPU (Linux; no-op elsewhere).
  /// Off by default: pinning helps steady-state NUMA runs but hurts when
  /// the machine is shared, so it is an explicit opt-in.
  ThreadExecutor& with_pin_workers(bool pin) noexcept {
    pin_workers_ = pin;
    return *this;
  }

  /// Run the engine to completion on `threads_` workers; blocks until done.
  /// Engines exposing a sharded heap (shard_count() > 1) are driven by the
  /// work-stealing scheduler; everything else takes the single-heap path.
  ThreadRunReport run(EngineT& engine) {
    using Clock = std::chrono::steady_clock;
    const auto run_start = Clock::now();

    const std::size_t S = shard_count_of(engine);
    if constexpr (!obs::kTracingEnabled) trace_ = nullptr;
    if (trace_ != nullptr) trace_->ensure_workers(threads_);

    // Units acquired but not yet committed (includes items parked in local
    // run queues and completion buffers).  Acquirers *pre-claim* their
    // batch — add k before the acquire, give back the shortfall after — so
    // a peer can never observe "no queued work and nothing in flight" while
    // an acquire that will succeed is mid-flight (the stall check below
    // would misfire otherwise).
    std::atomic<int> in_flight{0};
    std::atomic<bool> failed{false};

    // Parking.  wake_mu serializes only the sleep/wake handshake, never any
    // engine access on the waker's side: wakers make work visible first
    // (inside the engine), then pass through wake_mu, so a parking worker
    // that re-checks under wake_mu either sees the work or is already in
    // wait() when the notify lands — no lost wakeups.  Sleepers do read the
    // engine's queue counts while holding wake_mu; nothing takes wake_mu
    // while holding an engine lock, so the hierarchy stays acyclic.
    std::mutex wake_mu;
    std::condition_variable cv;
    std::atomic<int> sleepers{0};  // mutated under wake_mu; read lock-free

    std::vector<SchedulerStats> stats(static_cast<std::size_t>(threads_));

    // Per-worker local run queues (sharded scheduler only).  The owner pops
    // the front — its acquired priority order — while thieves take the
    // back (the entries the owner would reach last) under try_lock.  A
    // queue mutex is only ever taken with no other lock held.
    struct LocalQueue {
      std::mutex mu;
      std::deque<ItemT> items;
    };
    std::vector<std::unique_ptr<LocalQueue>> local;
    if (S > 1) {
      local.reserve(static_cast<std::size_t>(threads_));
      for (int i = 0; i < threads_; ++i)
        local.push_back(std::make_unique<LocalQueue>());
    }

    std::vector<std::unique_ptr<ConcurrentTranspositionTable>> tables;
    if (per_thread_table_log2_ >= 0) {
      tables.reserve(static_cast<std::size_t>(threads_));
      for (int i = 0; i < threads_; ++i)
        tables.push_back(std::make_unique<ConcurrentTranspositionTable>(
            per_thread_table_log2_));
    }

    const std::size_t k = static_cast<std::size_t>(batch_size_);

    // Park until work plausibly exists again.  The predicate also fires on
    // in_flight == 0 so that a scheduling bug (work leaked with nothing in
    // flight) wakes everyone into the stall check instead of deadlocking.
    auto park = [&](SchedulerStats& st, obs::Tracer* tr) {
      std::unique_lock<std::mutex> lk(wake_mu);
      auto ready = [&] {
        return engine.done() || failed.load() || in_flight.load() == 0 ||
               queued_estimate(engine) > 0;
      };
      if (ready()) return;
      sleepers.fetch_add(1);
      ++st.sleeps;
      const auto sleep_from =
          tr != nullptr ? Clock::now() : Clock::time_point{};
      cv.wait(lk, ready);
      sleepers.fetch_sub(1);
      lk.unlock();
      if (tr != nullptr)
        tr->span(obs::EventKind::kSleepSpan, trace_->to_ns(sleep_from),
                 trace_->now_ns());
    };

    // Targeted wakeups: at most one sleeper per unit actually available
    // (`extra` covers units just parked in the caller's own local queue —
    // sleepers can steal those).  The empty wake_mu section pairs with the
    // sleeper's locked re-check (see above).
    auto wake_for = [&](std::size_t extra, SchedulerStats& st,
                        obs::Tracer* tr) {
      if (sleepers.load() <= 0) return;
      const std::size_t avail = queued_estimate(engine) + extra;
      const std::size_t wake =
          std::min(avail, static_cast<std::size_t>(sleepers.load()));
      if (wake == 0) return;
      { std::lock_guard<std::mutex> g(wake_mu); }
      st.wakeups_issued += wake;
      for (std::size_t i = 0; i < wake; ++i) cv.notify_one();
      if (tr != nullptr)
        tr->instant(obs::EventKind::kWakeup, trace_->now_ns(),
                    obs::kNoTraceNode, static_cast<std::uint32_t>(wake));
    };

    // Exit path: pass through wake_mu before the broadcast so sleepers'
    // locked re-checks are ordered against our observation of done/failed.
    auto broadcast_exit = [&] {
      obs::TraceSession::set_thread_tracer(nullptr);
      { std::lock_guard<std::mutex> g(wake_mu); }
      cv.notify_all();
    };

    auto report_stall = [&](int index) {
      std::fprintf(stderr,
                   "ThreadExecutor stall: no queued work, 0 units in "
                   "flight, engine not done (worker %d, %d threads, "
                   "batch %d, %zu shards).  Unfinished nodes:\n",
                   index, threads_, batch_size_, S);
      if constexpr (requires { engine.debug_dump_unfinished(stderr); })
        engine.debug_dump_unfinished(stderr);
      failed.store(true);
    };

    // --- single-heap scheduler ---------------------------------------------
    // Flush completions, acquire a batch, compute it, repeat.  All engine
    // synchronization happens inside the engine; at S == 1 every acquire
    // takes the one shard lock, reproducing the old one-mutex schedule.
    auto worker = [&](int index) {
      SchedulerStats& st = stats[static_cast<std::size_t>(index)];
      obs::Tracer* tr = trace_ == nullptr ? nullptr : &trace_->worker(index);
      obs::TraceSession::set_thread_tracer(tr);
      std::vector<ItemT> run_buf;
      std::vector<EntryT> done_buf;
      run_buf.reserve(k);
      done_buf.reserve(k);
      // Recycled compute-result buffers: committed entries donate their
      // results (whose child vectors keep capacity — the engine copies
      // positions out, never moves the buffers) back to a spare pool, so
      // steady-state expansion computes into warm vectors instead of
      // allocating fresh ones per unit.
      std::vector<ResultT> spare;
      spare.reserve(kSpareResults);
      auto take_spare = [&]() -> ResultT {
        if (spare.empty()) return ResultT{};
        ResultT r = std::move(spare.back());
        spare.pop_back();
        return r;
      };
      auto harvest = [&](std::vector<EntryT>& buf) {
        for (EntryT& e : buf)
          if (spare.size() < kSpareResults) spare.push_back(std::move(e.result));
      };
      int spins = 0;

      for (;;) {
        // --- flush completions (engine combines internally) ---------------
        if (!done_buf.empty()) {
          if (tr != nullptr) {
            tr->instant(obs::EventKind::kCommitBatch, trace_->now_ns(),
                        obs::kNoTraceNode,
                        static_cast<std::uint32_t>(done_buf.size()));
            const auto f0 = Clock::now();
            // The peer-applied signal is a stealing-path statistic; the
            // single-heap path keeps its steal-family counters at zero.
            (void)commit_all(engine, done_buf);
            st.commit_hist.record(ns(f0, Clock::now()));
          } else {
            (void)commit_all(engine, done_buf);
          }
          st.units += done_buf.size();
          in_flight.fetch_sub(static_cast<int>(done_buf.size()));
          harvest(done_buf);
          done_buf.clear();
        }
        if (engine.done() || failed.load()) return broadcast_exit();

        // --- acquire the next batch ---------------------------------------
        in_flight.fetch_add(static_cast<int>(k));  // pre-claim (see above)
        const std::size_t got = acquire_into(engine, k, run_buf);
        if (got < k) in_flight.fetch_sub(static_cast<int>(k - got));
        if (got == 0) {
          // acquire() itself can finish the search (pop-time cutoffs can
          // combine all the way to the root); re-check before stalling.
          if (engine.done()) return broadcast_exit();
          if (in_flight.load() == 0) {
            report_stall(index);
            return broadcast_exit();
          }
          if (spins < kDryYieldRounds) {
            // Bounded backoff before the futex sleep: yield, don't pause —
            // work is usually released within a commit or two, and a
            // voluntary reschedule donates the timeslice to whichever
            // worker holds it (decisive on an oversubscribed machine,
            // where a pause loop just burns the quantum the work holder
            // needs), while a sleep plus wakeup costs two syscalls.
            ++spins;
            std::this_thread::yield();
            continue;
          }
          spins = 0;
          park(st, tr);
          continue;
        }
        spins = 0;
        st.record_batch(got);
        if (tr != nullptr)
          tr->instant(obs::EventKind::kAcquireBatch, trace_->now_ns(),
                      node_of(run_buf.front()),
                      static_cast<std::uint32_t>(got));
        wake_for(0, st, tr);

        // --- parallel section: compute the whole batch, no locks held -----
        for (ItemT& item : run_buf) {
          ResultT result = take_spare();
          if (tr == nullptr) {
            compute_item_into(engine, item, index, tables, result);
            done_buf.push_back(EntryT{item, std::move(result)});
            continue;
          }
          const auto c0 = Clock::now();
          compute_item_into(engine, item, index, tables, result);
          const auto c1 = Clock::now();
          const std::uint64_t cns = ns(c0, c1);
          st.compute_ns += cns;
          st.compute_hist.record(cns);
          stamp_compute_ns(result, cns);
          tr->span(obs::EventKind::kComputeSpan, trace_->to_ns(c0),
                   trace_->to_ns(c1), node_of(item));
          trace_tt(*tr, trace_->to_ns(c1), node_of(item), result);
          done_buf.push_back(EntryT{item, std::move(result)});
        }
        run_buf.clear();
      }
    };

    // --- work-stealing scheduler (sharded heap) ----------------------------
    // Own local queue first, then bounded random victim probes, then the
    // engine: each worker refills its local run queue from its home shard
    // (falling back to a global scan so no shard is orphaned when
    // threads < shards), computes one unit at a time, and steals from a
    // random peer's queue when its own runs dry.  A home-shard refill takes
    // exactly one shard lock, so refills on different shards run
    // concurrently; commits publish to the flat-combining path, where a
    // contended commit rides a peer's combine round instead of convoying on
    // a lock (counted as a flush deferral).
    //
    // Homes are topology-aware (runtime/topology.hpp): workers on one NUMA
    // node draw their home shards from one contiguous group and probe
    // same-node victims first, so parent-routed refills and back-steals
    // stay on the node.  Single-node machines get the historical
    // round-robin `index % S` exactly.
    WorkerPlacement placement;
    std::vector<std::vector<int>> node_peers;  // per worker: same-node others
    if (S > 1) {
      placement = plan_worker_placement(
          threads_, S, has_topology_ ? topology_ : CpuTopology::detect());
      node_peers.resize(static_cast<std::size_t>(threads_));
      for (int i = 0; i < threads_; ++i)
        for (int j = 0; j < threads_; ++j)
          if (j != i && placement.node[static_cast<std::size_t>(j)] ==
                            placement.node[static_cast<std::size_t>(i)])
            node_peers[static_cast<std::size_t>(i)].push_back(j);
    }
    auto stealing_worker = [&](int index) {
      SchedulerStats& st = stats[static_cast<std::size_t>(index)];
      obs::Tracer* tr = trace_ == nullptr ? nullptr : &trace_->worker(index);
      obs::TraceSession::set_thread_tracer(tr);
      LocalQueue& mine = *local[static_cast<std::size_t>(index)];
      const std::size_t home =
          S > 1 ? placement.home_shard[static_cast<std::size_t>(index)]
                : static_cast<std::size_t>(index) % S;
#if defined(__linux__)
      if (pin_workers_ && S > 1 &&
          placement.cpu[static_cast<std::size_t>(index)] >= 0) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(static_cast<unsigned>(
                    placement.cpu[static_cast<std::size_t>(index)]),
                &set);
        // Best-effort: a failed pin (cgroup mask, sandbox) just leaves the
        // worker floating; placement homes are still correct.
        (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
      }
#endif
      const std::vector<int>* peers =
          S > 1 && !node_peers[static_cast<std::size_t>(index)].empty()
              ? &node_peers[static_cast<std::size_t>(index)]
              : nullptr;
      std::vector<EntryT> done_buf;
      std::vector<ItemT> refill_buf;
      done_buf.reserve(k);
      refill_buf.reserve(k);
      // Recycled compute-result buffers (see the single-heap worker): the
      // stealing path harvests from both the in-place commit and the
      // flat-combining reap, so deferred flushes recycle too.
      std::vector<ResultT> spare;
      spare.reserve(kSpareResults);
      auto take_spare = [&]() -> ResultT {
        if (spare.empty()) return ResultT{};
        ResultT r = std::move(spare.back());
        spare.pop_back();
        return r;
      };
      auto harvest = [&](std::vector<EntryT>& buf) {
        for (EntryT& e : buf)
          if (spare.size() < kSpareResults) spare.push_back(std::move(e.result));
      };
      std::uint64_t rng =
          (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1)) | 1;
      int spins = 0;

      // Asynchronous commits: flush applies the completed batch in place
      // when the combine lock is free (try_commit_batch); when a peer
      // holds it, the batch is published as a flat-combining record and
      // the worker keeps computing while the record rides a later drain
      // round (counted as a flush deferral, the same
      // keep-working-through-a-contended-commit discipline the try_lock
      // scheduler had).  The entries and the PendingCommit handle are
      // referenced by the engine until some combiner applies the record,
      // so outstanding flushes park in `pending` (heap-stable) and are
      // reaped once their applied flag flips.  Records can apply out of
      // publish order (a concurrent drain may snapshot a later record's
      // shard list first), so reap scans the whole set.
      struct PendingFlush {
        std::vector<EntryT> entries;
        typename EngineT::PendingCommit pc;
      };
      std::deque<std::unique_ptr<PendingFlush>> pending;
      constexpr std::size_t kMaxPendingFlushes = 4;

      auto reap = [&] {
        for (auto it = pending.begin(); it != pending.end();) {
          if ((*it)->pc.applied.load(std::memory_order_acquire)) {
            st.units += (*it)->entries.size();
            in_flight.fetch_sub(static_cast<int>((*it)->entries.size()));
            harvest((*it)->entries);
            it = pending.erase(it);
          } else {
            ++it;
          }
        }
      };

      // Blocking backstop: force a combine round until every outstanding
      // record of ours is applied.  The spin covers the window where a
      // peer's drain has snapshotted a record but not yet flipped its flag.
      // Must run before the worker returns — the engine holds pointers
      // into `pending` until application — and before parking, because a
      // sleeping publisher's unapplied record would otherwise hold
      // in_flight above zero with no one left to combine it.
      auto drain_pending = [&] {
        while (!pending.empty()) {
          engine.combine_published();
          reap();
          if (!pending.empty()) spin_pause();
        }
      };

      auto flush = [&] {
        if (done_buf.empty()) return;
        if (tr != nullptr)
          tr->instant(obs::EventKind::kCommitBatch, trace_->now_ns(),
                      obs::kNoTraceNode,
                      static_cast<std::uint32_t>(done_buf.size()));
        // Traced runs record the in-place commit latency (lock wait +
        // combine round).  Deferred publishes are excluded: their apply
        // rides a peer's drain, so there is no local latency to observe —
        // flush_deferrals already counts them.
        const auto f0 = tr != nullptr ? Clock::now() : Clock::time_point{};
        if (engine.try_commit_batch(std::span<EntryT>(done_buf))) {
          if (tr != nullptr) st.commit_hist.record(ns(f0, Clock::now()));
          st.units += done_buf.size();
          in_flight.fetch_sub(static_cast<int>(done_buf.size()));
          harvest(done_buf);
          done_buf.clear();
          reap();  // our drain round may have applied earlier publishes
          return;
        }
        auto pf = std::make_unique<PendingFlush>();
        pf->entries.swap(done_buf);
        done_buf.reserve(k);
        engine.publish_commit(std::span<EntryT>(pf->entries), pf->pc);
        pending.push_back(std::move(pf));
        ++st.flush_deferrals;
        reap();
        // Bound the outstanding set so a worker that keeps losing the
        // combine race cannot accumulate unapplied records without limit.
        if (pending.size() >= kMaxPendingFlushes) drain_pending();
      };

      // Refill the local run queue: home shard first, global scan second.
      // Returns the number acquired.
      auto refill = [&]() -> std::size_t {
        refill_buf.clear();
        in_flight.fetch_add(static_cast<int>(k));  // pre-claim
        std::size_t got = acquire_shard_into(engine, home, k, refill_buf);
        bool global = false;
        if (got == 0) {
          got = acquire_into(engine, k, refill_buf);
          if (got > 0) {
            ++st.global_refills;
            global = true;
          }
        }
        if (got < k) in_flight.fetch_sub(static_cast<int>(k - got));
        if (got > 0) {
          if (tr != nullptr)
            tr->instant(
                global ? obs::EventKind::kRefillGlobal
                       : obs::EventKind::kRefillHome,
                trace_->now_ns(), node_of(refill_buf.front()),
                static_cast<std::uint32_t>(got),
                global ? obs::kNoTraceShard : static_cast<std::uint16_t>(home));
          st.record_batch(got);
          std::lock_guard<std::mutex> g(mine.mu);
          for (ItemT& it : refill_buf) mine.items.push_back(std::move(it));
        }
        return got;
      };

      for (;;) {
        // --- own queue first, then steal ----------------------------------
        std::optional<ItemT> item;
        {
          std::lock_guard<std::mutex> g(mine.mu);
          if (!mine.items.empty()) {
            item = std::move(mine.items.front());
            mine.items.pop_front();
          }
        }
        if (!item && threads_ > 1) {
          for (int probe = 0; probe < kStealProbes && !item; ++probe) {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            // Topology bias: even probes pick a same-NUMA-node peer (local
            // steals keep the stolen unit's cache lines on-node); odd probes
            // stay uniformly random so remote queues still drain when a
            // whole node runs dry.
            const int victim =
                peers != nullptr && probe % 2 == 0
                    ? (*peers)[static_cast<std::size_t>(
                          rng % static_cast<std::uint64_t>(peers->size()))]
                    : static_cast<int>(rng %
                                       static_cast<std::uint64_t>(threads_));
            if (victim == index) continue;
            ++st.steal_attempts;
            if (tr != nullptr)
              tr->instant(obs::EventKind::kStealProbe, trace_->now_ns(),
                          obs::kNoTraceNode,
                          static_cast<std::uint32_t>(victim));
            LocalQueue& q = *local[static_cast<std::size_t>(victim)];
            std::unique_lock<std::mutex> g(q.mu, std::try_to_lock);
            if (!g.owns_lock() || q.items.empty()) {
              if (tr != nullptr)
                tr->instant(obs::EventKind::kStealMiss, trace_->now_ns(),
                            obs::kNoTraceNode,
                            static_cast<std::uint32_t>(victim));
              continue;
            }
            item = std::move(q.items.back());
            q.items.pop_back();
            ++st.steal_hits;
            // Steal feedback (DESIGN.md §17): tell engines that rank
            // speculation by steal pressure which shard just lost a unit
            // to a thief.  Detected structurally so executors keep working
            // against engines without the hook.
            if constexpr (requires { engine.note_steal(std::uint32_t{}); })
              engine.note_steal(node_of(*item));
            if (tr != nullptr)
              tr->instant(obs::EventKind::kStealHit, trace_->now_ns(),
                          node_of(*item), static_cast<std::uint32_t>(victim));
          }
        }
        if (item) {
          ResultT result = take_spare();
          if (tr == nullptr) {
            compute_item_into(engine, *item, index, tables, result);
            done_buf.push_back(EntryT{*item, std::move(result)});
          } else {
            const auto c0 = Clock::now();
            compute_item_into(engine, *item, index, tables, result);
            const auto c1 = Clock::now();
            const std::uint64_t cns = ns(c0, c1);
            st.compute_ns += cns;
            st.compute_hist.record(cns);
            stamp_compute_ns(result, cns);
            tr->span(obs::EventKind::kComputeSpan, trace_->to_ns(c0),
                     trace_->to_ns(c1), node_of(*item));
            trace_tt(*tr, trace_->to_ns(c1), node_of(*item), result);
            done_buf.push_back(EntryT{*item, std::move(result)});
          }
          if (done_buf.size() >= k) {
            flush();
            if (engine.done() || failed.load()) {
              drain_pending();
              return broadcast_exit();
            }
            wake_for(0, st, tr);
          }
          continue;
        }

        // --- dry: flush what we have, then refill -------------------------
        flush();
        if (engine.done() || failed.load()) {
          drain_pending();
          return broadcast_exit();
        }
        const std::size_t got = refill();
        if (got == 0) {
          if (!pending.empty()) {
            // Applying our outstanding records may create the very work the
            // refill just missed — drain and retry before giving up.
            drain_pending();
            if (engine.done() || failed.load()) return broadcast_exit();
            continue;
          }
          if (engine.done()) return broadcast_exit();
          if (in_flight.load() == 0) {
            report_stall(index);
            return broadcast_exit();
          }
          if (spins < kDryYieldRounds) {
            ++spins;
            std::this_thread::yield();
            continue;
          }
          spins = 0;
          park(st, tr);
          continue;
        }
        spins = 0;
        // Wake one sleeper per unit still acquirable plus the surplus just
        // parked in our own queue (sleepers can steal those).
        wake_for(got - 1, st, tr);
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i) {
      if (S > 1)
        pool.emplace_back(stealing_worker, i);
      else
        pool.emplace_back(worker, i);
    }
    for (auto& t : pool) t.join();
    ERS_CHECK(!failed.load() && "problem-heap engine stalled");
    ERS_CHECK(engine.done());

    ThreadRunReport report;
    report.threads = threads_;
    report.shards = static_cast<int>(S);
    report.elapsed_ns = ns(run_start, Clock::now());
    for (const SchedulerStats& st : stats) report.sched.merge(st);
    report.units = report.sched.units;
    // Fold the engine's internal lock accounting into the aggregate the
    // benches read; keep the per-shard and combine breakdowns verbatim.
    if constexpr (requires { engine.lock_stats(); }) {
      const auto ls = engine.lock_stats();
      report.sched.lock_acquisitions += ls.total_acquisitions();
      report.sched.lock_wait_ns += ls.total_wait_ns();
      report.sched.lock_hold_ns += ls.total_hold_ns();
      report.shard_lock_acquisitions = ls.shard_acquisitions;
      report.shard_lock_wait_ns = ls.shard_wait_ns;
      report.shard_lock_hold_ns = ls.shard_hold_ns;
      report.combine_batches = ls.combine_batches;
      report.combine_records = ls.combine_records;
      report.combine_entries = ls.combine_entries;
      report.combine_peer_applied = ls.combine_peer_applied;
      report.combine_wait_ns = ls.combine_wait_ns;
      report.truncated_records = ls.truncated_records;
      report.frontier_continuations = ls.frontier_continuations;
      report.root_publishes = ls.root_publishes;
      report.root_publish_retries = ls.root_publish_retries;
      report.root_validate_retries = ls.root_validate_retries;
    }
    if constexpr (requires { engine.stats().search.tt_probes; }) {
      report.tt_probes = engine.stats().search.tt_probes;
      report.tt_hits = engine.stats().search.tt_hits;
    }
    // Node-storage occupancy snapshot (engines with two-tier storage).
    if constexpr (requires { engine.mem_stats(); })
      report.mem = engine.mem_stats();
    if constexpr (requires { engine.waste_stats(); })
      report.waste = engine.waste_stats();
    return report;
  }

 private:
  using ItemT = std::decay_t<decltype(*std::declval<EngineT&>().acquire())>;
  using ResultT = decltype(std::declval<EngineT&>().compute(
      std::declval<const ItemT&>()));
  /// Completion-buffer entry; matches EngineT::CommitEntry where the engine
  /// has one so the buffer can be handed to commit_batch as-is.
  struct FallbackEntry {
    ItemT item;
    ResultT result;
  };
  template <typename E, typename = void>
  struct EntryFor {
    using type = FallbackEntry;
  };
  template <typename E>
  struct EntryFor<E, std::void_t<typename E::CommitEntry>> {
    using type = typename E::CommitEntry;
  };
  using EntryT = typename EntryFor<EngineT>::type;

  /// Yield-retry rounds a dry worker donates its timeslice through before
  /// parking on the condition variable (a futex sleep plus wakeup costs two
  /// syscalls; work is usually released within a commit or two).
  static constexpr int kDryYieldRounds = 16;
  /// Victim probes per steal round; bounded so a starving worker falls
  /// through to the (blocking) refill path quickly when all queues are dry.
  static constexpr int kStealProbes = 4;
  /// Cap on a worker's recycled compute-result pool.  Bounds the warm
  /// capacity a worker retains to a small multiple of its batch size.
  static constexpr std::size_t kSpareResults = 64;

  [[nodiscard]] static std::uint64_t ns(
      std::chrono::steady_clock::time_point a,
      std::chrono::steady_clock::time_point b) noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  }

  /// Stamp the executor-measured compute duration onto results that carry
  /// one (core::ComputeResult::compute_ns); the waste ledger charges this
  /// exact figure when the unit's subtree is later cancelled.  No-op for
  /// engines whose result type has no such field.
  template <typename Result>
  static void stamp_compute_ns(Result& r, std::uint64_t v) noexcept {
    if constexpr (requires { r.compute_ns; }) r.compute_ns = v;
  }

  static void spin_pause() noexcept {
    for (int i = 0; i < 64; ++i) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    }
  }

  template <typename E>
  static std::size_t acquire_into(E& engine, std::size_t k,
                                  std::vector<ItemT>& out) {
    if constexpr (requires { engine.acquire_batch(k, out); }) {
      return engine.acquire_batch(k, out);
    } else {
      std::size_t got = 0;
      while (got < k) {
        auto item = engine.acquire();
        if (!item) break;
        out.push_back(*item);
        ++got;
      }
      return got;
    }
  }

  /// Commit the completion buffer; returns true when the engine reports a
  /// *peer* combiner applied the batch (flat-combining engines only; false
  /// for engines whose commit path returns void).
  template <typename E>
  static bool commit_all(E& engine, std::vector<EntryT>& buf) {
    if constexpr (requires { engine.commit_batch(std::span<EntryT>(buf)); }) {
      using R = decltype(engine.commit_batch(std::span<EntryT>(buf)));
      if constexpr (std::is_convertible_v<R, bool>) {
        return engine.commit_batch(std::span<EntryT>(buf));
      } else {
        engine.commit_batch(std::span<EntryT>(buf));
        return false;
      }
    } else {
      for (EntryT& e : buf) engine.commit(e.item, std::move(e.result));
      return false;
    }
  }

  /// Shards the engine's heap is partitioned into (1 for engines without
  /// the sharded protocol) — selects the scheduler in run().
  template <typename E>
  [[nodiscard]] static std::size_t shard_count_of(const E& engine) {
    if constexpr (requires { engine.shard_count(); })
      return engine.shard_count();
    else
      return 1;
  }

  /// Pull up to k items from one shard; engines without the sharded batch
  /// form fall back to the global acquire (same semantics, no locality).
  template <typename E>
  static std::size_t acquire_shard_into(E& engine, std::size_t shard,
                                        std::size_t k,
                                        std::vector<ItemT>& out) {
    if constexpr (requires { engine.acquire_batch_shard(shard, k, out); })
      return engine.acquire_batch_shard(shard, k, out);
    else
      return acquire_into(engine, k, out);
  }

  template <typename E>
  static std::size_t queued_estimate(const E& engine) {
    if constexpr (requires { engine.queued_count(); })
      return engine.queued_count();
    else
      return 1;  // no count available: wake one sleeper at a time
  }

  /// Engine node id of a work item, for trace events; kNoTraceNode for
  /// engines whose items carry no node id.
  template <typename Item>
  [[nodiscard]] static std::uint32_t node_of(const Item& item) noexcept {
    if constexpr (requires { item.node; })
      return static_cast<std::uint32_t>(item.node);
    else
      return obs::kNoTraceNode;
  }

  /// Per-unit transposition-table traffic as trace instants, from the
  /// compute result's own counters (compute runs outside every lock, so the
  /// worker's ring — not the engine's — must carry these).
  template <typename Result>
  static void trace_tt(obs::Tracer& tr, std::uint64_t ts, std::uint32_t node,
                       const Result& r) {
    if constexpr (requires { r.stats.tt_probes; }) {
      if (r.stats.tt_probes > 0)
        tr.instant(obs::EventKind::kTtProbe, ts, node,
                   static_cast<std::uint32_t>(r.stats.tt_probes));
      if (r.stats.tt_hits > 0)
        tr.instant(obs::EventKind::kTtHit, ts, node,
                   static_cast<std::uint32_t>(r.stats.tt_hits));
    } else {
      (void)tr; (void)ts; (void)node; (void)r;
    }
  }

  /// Heavy phase dispatch: engines that accept an explicit table get the
  /// worker's private one when per-thread tables are enabled.
  template <typename Item, typename Tables>
  static auto compute_item(EngineT& engine, const Item& item, int index,
                           Tables& tables) {
    if constexpr (requires {
                    engine.compute(
                        item, static_cast<ConcurrentTranspositionTable*>(nullptr));
                  }) {
      if (!tables.empty())
        return engine.compute(item, tables[static_cast<std::size_t>(index)].get());
    }
    return engine.compute(item);
  }

  /// In-place variant: compute into a recycled result so engines exposing
  /// compute_into reuse the buffer's child-vector capacity (zero
  /// allocations on the steady-state expansion path).  Engines without it
  /// fall back to the by-value compute.
  template <typename Item, typename Tables, typename Result>
  static void compute_item_into(EngineT& engine, const Item& item, int index,
                                Tables& tables, Result& out) {
    if constexpr (requires {
                    engine.compute_into(
                        item, static_cast<ConcurrentTranspositionTable*>(nullptr),
                        out);
                  }) {
      if (!tables.empty()) {
        engine.compute_into(item, tables[static_cast<std::size_t>(index)].get(),
                            out);
        return;
      }
    }
    if constexpr (requires { engine.compute_into(item, out); })
      engine.compute_into(item, out);
    else
      out = compute_item(engine, item, index, tables);
  }

  int threads_;
  int batch_size_ = 1;
  int per_thread_table_log2_ = -1;  ///< < 0: use the engine's configuration
  obs::TraceSession* trace_ = nullptr;  ///< not owned; null = untraced
  CpuTopology topology_;        ///< placement input when has_topology_
  bool has_topology_ = false;   ///< false: detect() at run() time
  bool pin_workers_ = false;    ///< pin each worker to its planned CPU
};

}  // namespace ers::runtime
