#pragma once
// Shared-memory runtime: real std::thread workers driving a problem-heap
// engine (the counterpart of the paper's Sequent implementation).
//
// The engine's acquire/commit phases mutate the shared tree and queues, so
// they run under one mutex (the paper likewise reports contention for the
// shared tree as a first-order cost).  The heavy compute phase — child
// generation and serial subtree searches — runs outside the lock, which is
// where the real parallelism lives.
//
// Batched scheduling (paper §6's contention remedy): each worker keeps a
// small local run buffer filled by one acquire_batch call and a local
// completion buffer flushed through one commit_batch call, so the serialized
// section is entered once per batch instead of twice per unit.  Wakeups are
// targeted: a worker that commits or acquires work wakes only as many
// sleepers as there are units actually left on the queues (no
// notify_all thundering herd), and a starving worker spins briefly before
// sleeping so it can catch work released a few microseconds later without a
// futex round trip.  Every worker keeps a SchedulerStats block — lock
// traffic, wait/hold nanoseconds, batch-size histogram, wakeups — aggregated
// into the ThreadRunReport so contention is measurable, not guessed
// (bench_scheduler consumes exactly these counters).
//
// Transposition tables: the engine's EngineConfig::shared_table (one
// lock-free table, every worker probes/stores it) is the production setup.
// use_per_thread_tables() is the bench control: each worker gets a private
// table of the same size, isolating the benefit of *sharing* knowledge from
// the benefit of merely *having* a table.  The run report carries the
// aggregate probe/hit counters either way.
//
// Works with any engine exposing the core::Engine protocol; engines without
// the batch forms (acquire_batch/commit_batch) are driven one unit at a
// time through the single-item calls.

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "search/concurrent_ttable.hpp"
#include "util/check.hpp"

namespace ers::runtime {

/// Per-worker scheduler observability, merged across workers into the run
/// report.  Times come from steady_clock; on a loaded machine lock_wait_ns
/// includes preemption of the lock holder, which is precisely the
/// interference a real shared heap suffers.
struct SchedulerStats {
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_wait_ns = 0;  ///< blocked entering the serial section
  std::uint64_t lock_hold_ns = 0;  ///< inside the serial section
  /// Time inside the compute phase (the busy timeline).  Measured — from
  /// the same clock readings the trace spans use, so the two totals agree
  /// exactly — only while a trace session is attached; 0 otherwise, keeping
  /// the untraced hot path free of per-unit clock reads.
  std::uint64_t compute_ns = 0;
  std::uint64_t units = 0;         ///< work units computed and committed
  std::uint64_t batches = 0;       ///< non-empty acquire_batch calls
  std::uint64_t wakeups_issued = 0;  ///< targeted notify_one calls
  std::uint64_t sleeps = 0;          ///< times a worker parked on the cv
  // Work-stealing counters (sharded scheduler only; zero on the single-heap
  // path).  A steal attempt is one victim probe; a hit moved one unit from
  // a peer's local run queue; misses are attempts - hits.
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_hits = 0;
  /// Contended commit flushes deferred by try_lock failure (the worker kept
  /// computing instead of queueing on the heap lock).
  std::uint64_t flush_deferrals = 0;
  /// Refills that fell through an empty home shard to the global scan.
  std::uint64_t global_refills = 0;

  /// Misses are derived, not stored.  Stats blocks can be merged in any
  /// order (a partially merged block may transiently carry hits from a
  /// worker whose attempts were not folded in yet), so clamp instead of
  /// letting the subtraction wrap to ~2^64.
  [[nodiscard]] std::uint64_t steal_misses() const noexcept {
    return steal_hits > steal_attempts ? 0 : steal_attempts - steal_hits;
  }
  /// Histogram of acquired batch sizes: bucket i counts batches of size
  /// i+1, the last bucket collecting everything >= kBatchBuckets.
  static constexpr std::size_t kBatchBuckets = 8;
  std::array<std::uint64_t, kBatchBuckets> batch_size_hist{};

  void record_batch(std::size_t size) {
    ++batches;
    const std::size_t b = size >= kBatchBuckets ? kBatchBuckets - 1 : size - 1;
    ++batch_size_hist[b];
  }

  /// The one way per-worker blocks fold into an aggregate (the executor and
  /// every bench go through here, never field-by-field addition).
  void merge(const SchedulerStats& o) {
    lock_acquisitions += o.lock_acquisitions;
    lock_wait_ns += o.lock_wait_ns;
    lock_hold_ns += o.lock_hold_ns;
    compute_ns += o.compute_ns;
    units += o.units;
    batches += o.batches;
    wakeups_issued += o.wakeups_issued;
    sleeps += o.sleeps;
    steal_attempts += o.steal_attempts;
    steal_hits += o.steal_hits;
    flush_deferrals += o.flush_deferrals;
    global_refills += o.global_refills;
    for (std::size_t i = 0; i < batch_size_hist.size(); ++i)
      batch_size_hist[i] += o.batch_size_hist[i];
  }

  [[nodiscard]] double mean_batch_size() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(units) /
                              static_cast<double>(batches);
  }
};

struct ThreadRunReport {
  std::uint64_t units = 0;
  int threads = 0;
  int shards = 1;  ///< problem-heap shards the run was scheduled over
  std::uint64_t tt_probes = 0;  ///< table probes across all workers
  std::uint64_t tt_hits = 0;    ///< validated, depth-covering hits
  std::uint64_t elapsed_ns = 0;  ///< wall time of the run() call
  SchedulerStats sched;          ///< aggregated across workers

  [[nodiscard]] double tt_hit_rate() const noexcept {
    return tt_probes == 0
               ? 0.0
               : static_cast<double>(tt_hits) / static_cast<double>(tt_probes);
  }
  /// Fraction of total worker-time spent blocked on the heap lock — the
  /// contention number the batching exists to shrink.
  [[nodiscard]] double lock_wait_share() const noexcept {
    const double total = static_cast<double>(elapsed_ns) *
                         static_cast<double>(threads);
    return total > 0 ? static_cast<double>(sched.lock_wait_ns) / total : 0.0;
  }
};

template <typename EngineT>
class ThreadExecutor {
 public:
  explicit ThreadExecutor(int threads) : threads_(threads) {
    ERS_CHECK(threads >= 1);
  }

  /// Units a worker pulls per serialized heap access (its local run-buffer
  /// size).  1 reproduces the unbatched scheduler exactly.
  ThreadExecutor& with_batch_size(int k) noexcept {
    ERS_CHECK(k >= 1);
    batch_size_ = k;
    return *this;
  }

  /// Bench control: give each worker a private ConcurrentTranspositionTable
  /// of 2^size_log2 slots, overriding the engine's shared table for the
  /// compute phase.  Tables live for one run() and are then discarded.
  ThreadExecutor& use_per_thread_tables(int size_log2) noexcept {
    per_thread_table_log2_ = size_log2;
    return *this;
  }

  /// Attach a trace session: every worker records its scheduling events
  /// (lock wait/hold, compute spans, steals, refills, sleeps, wakeups) into
  /// its own ring, stamped with steady-clock ns from the session epoch.
  /// The session must outlive run(); read it only after run() returns.
  /// Null (the default) keeps the untraced hot path: no clock reads, no
  /// stores.  Trace spans reuse the very timestamps SchedulerStats
  /// arithmetic takes, so per-worker trace totals and the run report agree
  /// exactly up to ring-buffer drops.
  ThreadExecutor& with_trace(obs::TraceSession* session) noexcept {
    trace_ = session;
    return *this;
  }

  /// Run the engine to completion on `threads_` workers; blocks until done.
  /// Engines exposing a sharded heap (shard_count() > 1) are driven by the
  /// work-stealing scheduler; everything else takes the single-heap path.
  ThreadRunReport run(EngineT& engine) {
    using Clock = std::chrono::steady_clock;
    const auto run_start = Clock::now();

    const std::size_t S = shard_count_of(engine);
    if constexpr (!obs::kTracingEnabled) trace_ = nullptr;
    if (trace_ != nullptr) trace_->ensure_workers(threads_);

    std::mutex mu;
    std::condition_variable cv;
    int in_flight = 0;   // units acquired but not yet committed (this count
                         // includes items parked in local run queues and
                         // completion buffers)
    int sleepers = 0;    // workers parked on the cv
    bool failed = false;

    std::vector<SchedulerStats> stats(static_cast<std::size_t>(threads_));

    // Per-worker local run queues (sharded scheduler only).  The owner pops
    // the front — its acquired priority order — while thieves take the
    // back (the entries the owner would reach last) under try_lock.  Lock
    // order is engine mutex -> queue mutex, and steals take a queue mutex
    // only, so the hierarchy is acyclic.
    struct LocalQueue {
      std::mutex mu;
      std::deque<ItemT> items;
    };
    std::vector<std::unique_ptr<LocalQueue>> local;
    if (S > 1) {
      local.reserve(static_cast<std::size_t>(threads_));
      for (int i = 0; i < threads_; ++i)
        local.push_back(std::make_unique<LocalQueue>());
    }

    std::vector<std::unique_ptr<ConcurrentTranspositionTable>> tables;
    if (per_thread_table_log2_ >= 0) {
      tables.reserve(static_cast<std::size_t>(threads_));
      for (int i = 0; i < threads_; ++i)
        tables.push_back(std::make_unique<ConcurrentTranspositionTable>(
            per_thread_table_log2_));
    }

    const std::size_t k = static_cast<std::size_t>(batch_size_);

    auto worker = [&](int index) {
      SchedulerStats& st = stats[static_cast<std::size_t>(index)];
      obs::Tracer* tr =
          trace_ == nullptr ? nullptr : &trace_->worker(index);
      std::vector<ItemT> run_buf;
      std::vector<EntryT> done_buf;
      run_buf.reserve(k);
      done_buf.reserve(k);
      int spins = 0;

      // Close the lock-hold accounting at one of the serialized section's
      // exits: the stats increment and the trace span come from the same
      // two clock readings.
      auto end_hold = [&](Clock::time_point hold_from) {
        const auto hold_to = Clock::now();
        st.lock_hold_ns += ns(hold_from, hold_to);
        if (tr != nullptr)
          tr->span(obs::EventKind::kLockHoldSpan, trace_->to_ns(hold_from),
                   trace_->to_ns(hold_to));
      };

      std::unique_lock<std::mutex> lock(mu, std::defer_lock);
      for (;;) {
        // --- serial section: flush completions, acquire the next batch ---
        const auto wait_from = Clock::now();
        lock.lock();
        const auto hold_from = Clock::now();
        ++st.lock_acquisitions;
        st.lock_wait_ns += ns(wait_from, hold_from);
        if (tr != nullptr) {
          trace_->set_current_worker(index);
          tr->span(obs::EventKind::kLockWaitSpan, trace_->to_ns(wait_from),
                   trace_->to_ns(hold_from));
        }

        if (!done_buf.empty()) {
          if (tr != nullptr)
            tr->instant(obs::EventKind::kCommitBatch, trace_->to_ns(hold_from),
                        obs::kNoTraceNode,
                        static_cast<std::uint32_t>(done_buf.size()));
          commit_all(engine, done_buf);
          st.units += done_buf.size();
          in_flight -= static_cast<int>(done_buf.size());
          done_buf.clear();
        }

        bool stop = engine.done() || failed;
        std::size_t got = 0;
        if (!stop) {
          got = acquire_into(engine, k, run_buf);
          // acquire() itself can finish the search (pop-time cutoffs can
          // combine all the way to the root); re-check before stalling.
          if (got == 0 && engine.done()) stop = true;
        }
        if (stop) {
          end_hold(hold_from);
          lock.unlock();
          cv.notify_all();  // everyone must observe done/failed and exit
          return;
        }
        if (got == 0) {
          if (in_flight == 0) {
            // No queued work, nothing in flight, root not combined: the
            // scheduling state machine leaked work.  Dump the engine's
            // queue/in-flight snapshot so the stall is diagnosable from CI
            // logs, then fail loudly rather than deadlock.
            std::fprintf(stderr,
                         "ThreadExecutor stall: no queued work, 0 units in "
                         "flight, engine not done (worker %d, %d threads, "
                         "batch %d).  Unfinished nodes:\n",
                         index, threads_, batch_size_);
            if constexpr (requires { engine.debug_dump_unfinished(stderr); })
              engine.debug_dump_unfinished(stderr);
            failed = true;
            end_hold(hold_from);
            lock.unlock();
            cv.notify_all();
            return;
          }
          end_hold(hold_from);
          if (spins < kMaxSpinRounds) {
            // Bounded backoff: drop the lock and spin briefly — work is
            // usually released within a commit or two, and a futex sleep
            // plus wakeup costs far more than a few pause loops.
            ++spins;
            lock.unlock();
            spin_pause();
            continue;
          }
          spins = 0;
          ++st.sleeps;
          ++sleepers;
          const auto sleep_from = tr != nullptr ? Clock::now() : Clock::time_point{};
          cv.wait(lock);
          --sleepers;
          lock.unlock();
          if (tr != nullptr)
            tr->span(obs::EventKind::kSleepSpan, trace_->to_ns(sleep_from),
                     trace_->now_ns());
          continue;
        }
        spins = 0;
        in_flight += static_cast<int>(got);
        st.record_batch(got);
        if (tr != nullptr)
          tr->instant(obs::EventKind::kAcquireBatch, trace_->now_ns(),
                      node_of(run_buf.front()),
                      static_cast<std::uint32_t>(got));
        // Targeted wakeups: wake at most one sleeper per unit still queued
        // (we already took ours).  The queue count is maintained under this
        // lock, so a worker that re-checks after us either sees the work or
        // was woken for it — no lost wakeups, no thundering herd.
        std::size_t wake = 0;
        if (sleepers > 0) {
          const std::size_t queued = queued_estimate(engine);
          wake = std::min(queued, static_cast<std::size_t>(sleepers));
        }
        end_hold(hold_from);
        lock.unlock();
        st.wakeups_issued += wake;
        for (std::size_t i = 0; i < wake; ++i) cv.notify_one();
        if (tr != nullptr && wake > 0)
          tr->instant(obs::EventKind::kWakeup, trace_->now_ns(),
                      obs::kNoTraceNode, static_cast<std::uint32_t>(wake));

        // --- parallel section: compute the whole batch outside the lock ---
        for (ItemT& item : run_buf) {
          if (tr == nullptr) {
            done_buf.push_back(
                EntryT{item, compute_item(engine, item, index, tables)});
            continue;
          }
          const auto c0 = Clock::now();
          auto result = compute_item(engine, item, index, tables);
          const auto c1 = Clock::now();
          st.compute_ns += ns(c0, c1);
          tr->span(obs::EventKind::kComputeSpan, trace_->to_ns(c0),
                   trace_->to_ns(c1), node_of(item));
          trace_tt(*tr, trace_->to_ns(c1), node_of(item), result);
          done_buf.push_back(EntryT{item, std::move(result)});
        }
        run_buf.clear();
      }
    };

    // Sharded scheduler: local shard first, then bounded random victim
    // probes, then park.  Each worker refills its local run queue from its
    // home shard (falling back to a global scan so no shard is orphaned
    // when threads < shards), computes one unit at a time, and steals from
    // a random peer's queue when its own runs dry — so a starving worker
    // converts heap-lock waits into useful work.  Commits flush through the
    // engine lock once per batch; a *contended* flush below the hard cap is
    // deferred (try_lock miss) rather than waited on, which is where the
    // measured lock-wait share falls relative to the batched single-heap
    // scheduler.  The engine itself is still driven under the one mutex —
    // sharding partitions the heap's *order* and the workers' queues, not
    // the tree's serialization (see DESIGN.md §10).
    auto stealing_worker = [&](int index) {
      SchedulerStats& st = stats[static_cast<std::size_t>(index)];
      obs::Tracer* tr =
          trace_ == nullptr ? nullptr : &trace_->worker(index);
      LocalQueue& mine = *local[static_cast<std::size_t>(index)];
      const std::size_t home = static_cast<std::size_t>(index) % S;
      const std::size_t flush_cap = std::max<std::size_t>(4 * k, 8);
      std::vector<EntryT> done_buf;
      std::vector<ItemT> refill_buf;
      done_buf.reserve(flush_cap);
      refill_buf.reserve(k);
      std::uint64_t rng =
          (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1)) | 1;
      int spins = 0;
      int dry = 0;  // consecutive contended serialized-visit attempts

      auto end_hold = [&](Clock::time_point hold_from) {
        const auto hold_to = Clock::now();
        st.lock_hold_ns += ns(hold_from, hold_to);
        if (tr != nullptr)
          tr->span(obs::EventKind::kLockHoldSpan, trace_->to_ns(hold_from),
                   trace_->to_ns(hold_to));
      };

      // Adaptive mutex acquire: try, then yield-retry — on a loaded or
      // few-core host the holder is usually *preempted*, not slow, and a
      // yield donates the timeslice so the next try succeeds — then block
      // for real.  Only the final blocking wait counts as lock wait: the
      // yield rounds are voluntary reschedules, not futex blocks.
      auto lock_adaptive = [&](std::unique_lock<std::mutex>& lock) {
        if (lock.try_lock()) return;
        for (int i = 0; i < kYieldRounds; ++i) {
          std::this_thread::yield();
          if (lock.try_lock()) return;
        }
        const auto wait_from = Clock::now();
        lock.lock();
        const auto wait_to = Clock::now();
        st.lock_wait_ns += ns(wait_from, wait_to);
        if (tr != nullptr)
          tr->span(obs::EventKind::kLockWaitSpan, trace_->to_ns(wait_from),
                   trace_->to_ns(wait_to));
      };

      // Flush the completion buffer into the engine; `mu` must be held.
      auto flush_locked = [&] {
        if (done_buf.empty()) return;
        if (tr != nullptr) {
          trace_->set_current_worker(index);
          tr->instant(obs::EventKind::kCommitBatch, trace_->now_ns(),
                      obs::kNoTraceNode,
                      static_cast<std::uint32_t>(done_buf.size()));
        }
        commit_all(engine, done_buf);
        st.units += done_buf.size();
        in_flight -= static_cast<int>(done_buf.size());
        done_buf.clear();
      };

      // Refill the local run queue: home shard first, global scan second.
      // `mu` must be held; returns the number acquired.
      auto refill_locked = [&]() -> std::size_t {
        refill_buf.clear();
        if (tr != nullptr) trace_->set_current_worker(index);
        std::size_t got = acquire_shard_into(engine, home, k, refill_buf);
        bool global = false;
        if (got == 0) {
          got = acquire_into(engine, k, refill_buf);
          if (got > 0) {
            ++st.global_refills;
            global = true;
          }
        }
        if (got > 0) {
          if (tr != nullptr)
            tr->instant(
                global ? obs::EventKind::kRefillGlobal
                       : obs::EventKind::kRefillHome,
                trace_->now_ns(), node_of(refill_buf.front()),
                static_cast<std::uint32_t>(got),
                global ? obs::kNoTraceShard : static_cast<std::uint16_t>(home));
          in_flight += static_cast<int>(got);
          st.record_batch(got);
          std::lock_guard<std::mutex> g(mine.mu);
          for (ItemT& it : refill_buf) mine.items.push_back(std::move(it));
        }
        return got;
      };

      for (;;) {
        // --- parallel section: own queue first, then steal ---------------
        std::optional<ItemT> item;
        {
          std::lock_guard<std::mutex> g(mine.mu);
          if (!mine.items.empty()) {
            item = std::move(mine.items.front());
            mine.items.pop_front();
          }
        }
        if (!item && threads_ > 1) {
          for (int probe = 0; probe < kStealProbes && !item; ++probe) {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            const int victim =
                static_cast<int>(rng % static_cast<std::uint64_t>(threads_));
            if (victim == index) continue;
            ++st.steal_attempts;
            if (tr != nullptr)
              tr->instant(obs::EventKind::kStealProbe, trace_->now_ns(),
                          obs::kNoTraceNode,
                          static_cast<std::uint32_t>(victim));
            LocalQueue& q = *local[static_cast<std::size_t>(victim)];
            std::unique_lock<std::mutex> g(q.mu, std::try_to_lock);
            if (!g.owns_lock() || q.items.empty()) {
              if (tr != nullptr)
                tr->instant(obs::EventKind::kStealMiss, trace_->now_ns(),
                            obs::kNoTraceNode,
                            static_cast<std::uint32_t>(victim));
              continue;
            }
            item = std::move(q.items.back());
            q.items.pop_back();
            ++st.steal_hits;
            if (tr != nullptr)
              tr->instant(obs::EventKind::kStealHit, trace_->now_ns(),
                          node_of(*item), static_cast<std::uint32_t>(victim));
          }
        }
        if (item) {
          dry = 0;
          if (tr == nullptr) {
            done_buf.push_back(
                EntryT{*item, compute_item(engine, *item, index, tables)});
          } else {
            const auto c0 = Clock::now();
            auto result = compute_item(engine, *item, index, tables);
            const auto c1 = Clock::now();
            st.compute_ns += ns(c0, c1);
            tr->span(obs::EventKind::kComputeSpan, trace_->to_ns(c0),
                     trace_->to_ns(c1), node_of(*item));
            trace_tt(*tr, trace_->to_ns(c1), node_of(*item), result);
            done_buf.push_back(EntryT{*item, std::move(result)});
          }
          if (done_buf.size() < k) continue;
          // Flush once per batch; a contended flush below the hard cap is
          // deferred — the worker goes back to computing and retries after
          // the next unit instead of convoying on the lock.
          const bool force = done_buf.size() >= flush_cap;
          std::unique_lock<std::mutex> lock(mu, std::defer_lock);
          if (force) {
            lock_adaptive(lock);
          } else if (!lock.try_lock()) {
            ++st.flush_deferrals;
            continue;
          }
          const auto hold_from = Clock::now();
          ++st.lock_acquisitions;
          flush_locked();
          const bool stop_now = engine.done() || failed;
          // Top up the run queue while we hold the lock anyway: the next
          // dry spell then needs no second serialized visit.
          std::size_t got = 0;
          if (!stop_now) {
            bool empty;
            {
              std::lock_guard<std::mutex> g(mine.mu);
              empty = mine.items.empty();
            }
            if (empty) got = refill_locked();
          }
          std::size_t wake = 0;
          if (!stop_now && sleepers > 0)
            wake = std::min(queued_estimate(engine) + (got > 0 ? got - 1 : 0),
                            static_cast<std::size_t>(sleepers));
          end_hold(hold_from);
          lock.unlock();
          if (stop_now) {
            cv.notify_all();
            return;
          }
          st.wakeups_issued += wake;
          for (std::size_t i = 0; i < wake; ++i) cv.notify_one();
          if (tr != nullptr && wake > 0)
            tr->instant(obs::EventKind::kWakeup, trace_->now_ns(),
                        obs::kNoTraceNode, static_cast<std::uint32_t>(wake));
          continue;
        }

        // --- serial section: flush and refill -----------------------------
        // Contended entry is retried via the steal loop first (kDryRounds
        // times, yielding between rounds): instead of queueing on the heap
        // lock, the worker goes back to looking for a peer's work — the
        // wait converts to compute when any queue is non-empty.  Only a
        // persistently dry worker falls through to the adaptive (and
        // finally blocking) acquire, and then usually parks on the cv.
        std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
        if (!lock.owns_lock()) {
          if (++dry <= kDryRounds) {
            std::this_thread::yield();
            continue;
          }
          lock_adaptive(lock);
        }
        dry = 0;
        const auto hold_from = Clock::now();
        ++st.lock_acquisitions;
        flush_locked();
        bool stop_now = engine.done() || failed;
        std::size_t got = 0;
        if (!stop_now) {
          got = refill_locked();
          if (got == 0 && engine.done()) stop_now = true;
        }
        if (stop_now) {
          end_hold(hold_from);
          lock.unlock();
          cv.notify_all();  // everyone must observe done/failed and exit
          return;
        }
        if (got == 0) {
          if (in_flight == 0) {
            std::fprintf(stderr,
                         "ThreadExecutor stall: no queued work, 0 units in "
                         "flight, engine not done (worker %d, %d threads, "
                         "batch %d, %zu shards).  Unfinished nodes:\n",
                         index, threads_, batch_size_, S);
            if constexpr (requires { engine.debug_dump_unfinished(stderr); })
              engine.debug_dump_unfinished(stderr);
            failed = true;
            end_hold(hold_from);
            lock.unlock();
            cv.notify_all();
            return;
          }
          end_hold(hold_from);
          if (spins < kMaxSpinRounds) {
            ++spins;
            lock.unlock();
            spin_pause();
            continue;
          }
          spins = 0;
          ++st.sleeps;
          ++sleepers;
          const auto sleep_from = tr != nullptr ? Clock::now() : Clock::time_point{};
          cv.wait(lock);
          --sleepers;
          lock.unlock();
          if (tr != nullptr)
            tr->span(obs::EventKind::kSleepSpan, trace_->to_ns(sleep_from),
                     trace_->now_ns());
          continue;
        }
        spins = 0;
        // Wake one sleeper per unit still acquirable plus the surplus just
        // parked in our own queue (sleepers can steal those).
        std::size_t wake = 0;
        if (sleepers > 0)
          wake = std::min(queued_estimate(engine) + (got - 1),
                          static_cast<std::size_t>(sleepers));
        end_hold(hold_from);
        lock.unlock();
        st.wakeups_issued += wake;
        for (std::size_t i = 0; i < wake; ++i) cv.notify_one();
        if (tr != nullptr && wake > 0)
          tr->instant(obs::EventKind::kWakeup, trace_->now_ns(),
                      obs::kNoTraceNode, static_cast<std::uint32_t>(wake));
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i) {
      if (S > 1)
        pool.emplace_back(stealing_worker, i);
      else
        pool.emplace_back(worker, i);
    }
    for (auto& t : pool) t.join();
    ERS_CHECK(!failed && "problem-heap engine stalled");
    ERS_CHECK(engine.done());

    ThreadRunReport report;
    report.threads = threads_;
    report.shards = static_cast<int>(S);
    report.elapsed_ns = ns(run_start, Clock::now());
    for (const SchedulerStats& st : stats) report.sched.merge(st);
    report.units = report.sched.units;
    if constexpr (requires { engine.stats().search.tt_probes; }) {
      report.tt_probes = engine.stats().search.tt_probes;
      report.tt_hits = engine.stats().search.tt_hits;
    }
    return report;
  }

 private:
  using ItemT = std::decay_t<decltype(*std::declval<EngineT&>().acquire())>;
  using ResultT = decltype(std::declval<EngineT&>().compute(
      std::declval<const ItemT&>()));
  /// Completion-buffer entry; matches EngineT::CommitEntry where the engine
  /// has one so the buffer can be handed to commit_batch as-is.
  struct FallbackEntry {
    ItemT item;
    ResultT result;
  };
  template <typename E, typename = void>
  struct EntryFor {
    using type = FallbackEntry;
  };
  template <typename E>
  struct EntryFor<E, std::void_t<typename E::CommitEntry>> {
    using type = typename E::CommitEntry;
  };
  using EntryT = typename EntryFor<EngineT>::type;

  static constexpr int kMaxSpinRounds = 2;
  /// Victim probes per steal round; bounded so a starving worker falls
  /// through to the (blocking) refill path quickly when all queues are dry.
  static constexpr int kStealProbes = 4;
  /// Contended serialized-visit attempts a dry worker converts into extra
  /// steal rounds before it blocks on the heap lock for real.
  static constexpr int kDryRounds = 16;
  /// Yield-retry rounds of the adaptive mutex acquire before blocking.
  static constexpr int kYieldRounds = 64;

  [[nodiscard]] static std::uint64_t ns(
      std::chrono::steady_clock::time_point a,
      std::chrono::steady_clock::time_point b) noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  }

  static void spin_pause() noexcept {
    for (int i = 0; i < 64; ++i) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    }
  }

  template <typename E>
  static std::size_t acquire_into(E& engine, std::size_t k,
                                  std::vector<ItemT>& out) {
    if constexpr (requires { engine.acquire_batch(k, out); }) {
      return engine.acquire_batch(k, out);
    } else {
      std::size_t got = 0;
      while (got < k) {
        auto item = engine.acquire();
        if (!item) break;
        out.push_back(*item);
        ++got;
      }
      return got;
    }
  }

  template <typename E>
  static void commit_all(E& engine, std::vector<EntryT>& buf) {
    if constexpr (requires { engine.commit_batch(std::span<EntryT>(buf)); }) {
      engine.commit_batch(std::span<EntryT>(buf));
    } else {
      for (EntryT& e : buf) engine.commit(e.item, std::move(e.result));
    }
  }

  /// Shards the engine's heap is partitioned into (1 for engines without
  /// the sharded protocol) — selects the scheduler in run().
  template <typename E>
  [[nodiscard]] static std::size_t shard_count_of(const E& engine) {
    if constexpr (requires { engine.shard_count(); })
      return engine.shard_count();
    else
      return 1;
  }

  /// Pull up to k items from one shard; engines without the sharded batch
  /// form fall back to the global acquire (same semantics, no locality).
  template <typename E>
  static std::size_t acquire_shard_into(E& engine, std::size_t shard,
                                        std::size_t k,
                                        std::vector<ItemT>& out) {
    if constexpr (requires { engine.acquire_batch_shard(shard, k, out); })
      return engine.acquire_batch_shard(shard, k, out);
    else
      return acquire_into(engine, k, out);
  }

  template <typename E>
  static std::size_t queued_estimate(const E& engine) {
    if constexpr (requires { engine.queued_count(); })
      return engine.queued_count();
    else
      return 1;  // no count available: wake one sleeper at a time
  }

  /// Engine node id of a work item, for trace events; kNoTraceNode for
  /// engines whose items carry no node id.
  template <typename Item>
  [[nodiscard]] static std::uint32_t node_of(const Item& item) noexcept {
    if constexpr (requires { item.node; })
      return static_cast<std::uint32_t>(item.node);
    else
      return obs::kNoTraceNode;
  }

  /// Per-unit transposition-table traffic as trace instants, from the
  /// compute result's own counters (compute runs outside the engine lock,
  /// so the worker's ring — not the engine's — must carry these).
  template <typename Result>
  static void trace_tt(obs::Tracer& tr, std::uint64_t ts, std::uint32_t node,
                       const Result& r) {
    if constexpr (requires { r.stats.tt_probes; }) {
      if (r.stats.tt_probes > 0)
        tr.instant(obs::EventKind::kTtProbe, ts, node,
                   static_cast<std::uint32_t>(r.stats.tt_probes));
      if (r.stats.tt_hits > 0)
        tr.instant(obs::EventKind::kTtHit, ts, node,
                   static_cast<std::uint32_t>(r.stats.tt_hits));
    } else {
      (void)tr; (void)ts; (void)node; (void)r;
    }
  }

  /// Heavy phase dispatch: engines that accept an explicit table get the
  /// worker's private one when per-thread tables are enabled.
  template <typename Item, typename Tables>
  static auto compute_item(EngineT& engine, const Item& item, int index,
                           Tables& tables) {
    if constexpr (requires {
                    engine.compute(
                        item, static_cast<ConcurrentTranspositionTable*>(nullptr));
                  }) {
      if (!tables.empty())
        return engine.compute(item, tables[static_cast<std::size_t>(index)].get());
    }
    return engine.compute(item);
  }

  int threads_;
  int batch_size_ = 1;
  int per_thread_table_log2_ = -1;  ///< < 0: use the engine's configuration
  obs::TraceSession* trace_ = nullptr;  ///< not owned; null = untraced
};

}  // namespace ers::runtime
