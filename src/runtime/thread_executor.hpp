#pragma once
// Shared-memory runtime: real std::thread workers driving a problem-heap
// engine (the counterpart of the paper's Sequent implementation).
//
// The engine's acquire/commit phases mutate the shared tree and queues, so
// they run under one mutex (the paper likewise reports contention for the
// shared tree as a first-order cost).  The heavy compute phase — child
// generation and serial subtree searches — runs outside the lock, which is
// where the real parallelism lives.
//
// Transposition tables: the engine's EngineConfig::shared_table (one
// lock-free table, every worker probes/stores it) is the production setup.
// use_per_thread_tables() is the bench control: each worker gets a private
// table of the same size, isolating the benefit of *sharing* knowledge from
// the benefit of merely *having* a table.  The run report carries the
// aggregate probe/hit counters either way.
//
// Works with any engine exposing the core::Engine protocol.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "search/concurrent_ttable.hpp"
#include "util/check.hpp"

namespace ers::runtime {

struct ThreadRunReport {
  std::uint64_t units = 0;
  int threads = 0;
  std::uint64_t tt_probes = 0;  ///< table probes across all workers
  std::uint64_t tt_hits = 0;    ///< validated, depth-covering hits
  [[nodiscard]] double tt_hit_rate() const noexcept {
    return tt_probes == 0
               ? 0.0
               : static_cast<double>(tt_hits) / static_cast<double>(tt_probes);
  }
};

template <typename EngineT>
class ThreadExecutor {
 public:
  explicit ThreadExecutor(int threads) : threads_(threads) {
    ERS_CHECK(threads >= 1);
  }

  /// Bench control: give each worker a private ConcurrentTranspositionTable
  /// of 2^size_log2 slots, overriding the engine's shared table for the
  /// compute phase.  Tables live for one run() and are then discarded.
  ThreadExecutor& use_per_thread_tables(int size_log2) noexcept {
    per_thread_table_log2_ = size_log2;
    return *this;
  }

  /// Run the engine to completion on `threads_` workers; blocks until done.
  ThreadRunReport run(EngineT& engine) {
    std::mutex mu;
    std::condition_variable cv;
    int in_flight = 0;
    std::uint64_t units = 0;
    bool failed = false;

    std::vector<std::unique_ptr<ConcurrentTranspositionTable>> tables;
    if (per_thread_table_log2_ >= 0) {
      tables.reserve(static_cast<std::size_t>(threads_));
      for (int i = 0; i < threads_; ++i)
        tables.push_back(std::make_unique<ConcurrentTranspositionTable>(
            per_thread_table_log2_));
    }

    auto worker = [&](int index) {
      std::unique_lock<std::mutex> lock(mu);
      for (;;) {
        if (engine.done() || failed) return;
        auto item = engine.acquire();
        if (!item) {
          // acquire() itself can finish the search (pop-time cutoffs can
          // combine all the way to the root); re-check before declaring a
          // stall.
          if (engine.done()) {
            cv.notify_all();
            return;
          }
          if (in_flight == 0) {
            // No queued work, nothing in flight, root not combined: the
            // scheduling state machine leaked work.  Fail loudly rather
            // than deadlock.
            failed = true;
            cv.notify_all();
            return;
          }
          cv.wait(lock);
          continue;
        }
        ++in_flight;
        lock.unlock();
        auto result = compute_item(engine, *item, index, tables);  // unlocked
        lock.lock();
        --in_flight;
        engine.commit(*item, std::move(result));
        ++units;
        cv.notify_all();
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads_);
    for (int i = 0; i < threads_; ++i) pool.emplace_back(worker, i);
    for (auto& t : pool) t.join();
    ERS_CHECK(!failed && "problem-heap engine stalled");
    ERS_CHECK(engine.done());
    ThreadRunReport report{units, threads_};
    if constexpr (requires { engine.stats().search.tt_probes; }) {
      report.tt_probes = engine.stats().search.tt_probes;
      report.tt_hits = engine.stats().search.tt_hits;
    }
    return report;
  }

 private:
  /// Heavy phase dispatch: engines that accept an explicit table get the
  /// worker's private one when per-thread tables are enabled.
  template <typename Item, typename Tables>
  static auto compute_item(EngineT& engine, const Item& item, int index,
                           Tables& tables) {
    if constexpr (requires {
                    engine.compute(
                        item, static_cast<ConcurrentTranspositionTable*>(nullptr));
                  }) {
      if (!tables.empty())
        return engine.compute(item, tables[static_cast<std::size_t>(index)].get());
    }
    return engine.compute(item);
  }

  int threads_;
  int per_thread_table_log2_ = -1;  ///< < 0: use the engine's configuration
};

}  // namespace ers::runtime
