#pragma once
// Shared-memory runtime: real std::thread workers driving a problem-heap
// engine (the counterpart of the paper's Sequent implementation).
//
// The engine's acquire/commit phases mutate the shared tree and queues, so
// they run under one mutex (the paper likewise reports contention for the
// shared tree as a first-order cost).  The heavy compute phase — child
// generation and serial subtree searches — runs outside the lock, which is
// where the real parallelism lives.
//
// Works with any engine exposing the core::Engine protocol.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace ers::runtime {

struct ThreadRunReport {
  std::uint64_t units = 0;
  int threads = 0;
};

template <typename EngineT>
class ThreadExecutor {
 public:
  explicit ThreadExecutor(int threads) : threads_(threads) {
    ERS_CHECK(threads >= 1);
  }

  /// Run the engine to completion on `threads_` workers; blocks until done.
  ThreadRunReport run(EngineT& engine) {
    std::mutex mu;
    std::condition_variable cv;
    int in_flight = 0;
    std::uint64_t units = 0;
    bool failed = false;

    auto worker = [&] {
      std::unique_lock<std::mutex> lock(mu);
      for (;;) {
        if (engine.done() || failed) return;
        auto item = engine.acquire();
        if (!item) {
          // acquire() itself can finish the search (pop-time cutoffs can
          // combine all the way to the root); re-check before declaring a
          // stall.
          if (engine.done()) {
            cv.notify_all();
            return;
          }
          if (in_flight == 0) {
            // No queued work, nothing in flight, root not combined: the
            // scheduling state machine leaked work.  Fail loudly rather
            // than deadlock.
            failed = true;
            cv.notify_all();
            return;
          }
          cv.wait(lock);
          continue;
        }
        ++in_flight;
        lock.unlock();
        auto result = engine.compute(*item);  // heavy part, unlocked
        lock.lock();
        --in_flight;
        engine.commit(*item, std::move(result));
        ++units;
        cv.notify_all();
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads_);
    for (int i = 0; i < threads_; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    ERS_CHECK(!failed && "problem-heap engine stalled");
    ERS_CHECK(engine.done());
    return ThreadRunReport{units, threads_};
  }

 private:
  int threads_;
};

}  // namespace ers::runtime
