#pragma once
// CPU/NUMA topology detection and the worker → home-shard placement plan
// used by the stealing scheduler (DESIGN.md §13).
//
// The problem-heap shards are a software partition; this header maps that
// partition onto the machine's hardware partition so parent-routed refills
// and back-steals stay on one NUMA node: shards are split into contiguous
// groups proportional to each node's worker count, every worker's home
// shard comes from its own node's group, and steal victims on the same
// node are probed before remote ones.  On a single-node machine (or when
// sysfs is unavailable) the plan degenerates to the historical round-robin
// `home = worker % shards`, so topology awareness is a strict refinement,
// never a behavior change where there is no topology to exploit.
//
// Detection reads /sys/devices/system/node/node*/cpulist (Linux; the
// sched_getaffinity-era interface every multi-socket kernel exposes).
// Everything downstream of detection is a pure function of the topology,
// so tests exercise the placement logic on synthetic topologies without
// needing a NUMA machine.

#include <cstddef>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace ers::runtime {

/// Parse a sysfs cpulist ("0-3,8,10-11") into CPU ids.  Malformed input
/// yields the CPUs parsed so far (detection falls back gracefully).
inline std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::size_t i = 0;
  while (i < list.size()) {
    if (list[i] < '0' || list[i] > '9') break;
    int lo = 0;
    while (i < list.size() && list[i] >= '0' && list[i] <= '9')
      lo = lo * 10 + (list[i++] - '0');
    int hi = lo;
    if (i < list.size() && list[i] == '-') {
      ++i;
      hi = 0;
      while (i < list.size() && list[i] >= '0' && list[i] <= '9')
        hi = hi * 10 + (list[i++] - '0');
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    if (i < list.size() && list[i] == ',') ++i;
  }
  return cpus;
}

/// The machine's NUMA layout: CPU ids grouped by node.  Always has at
/// least one node with at least one CPU.
struct CpuTopology {
  std::vector<std::vector<int>> node_cpus;

  [[nodiscard]] std::size_t nodes() const noexcept { return node_cpus.size(); }
  [[nodiscard]] std::size_t total_cpus() const noexcept {
    std::size_t n = 0;
    for (const auto& c : node_cpus) n += c.size();
    return n;
  }

  /// Synthetic topology for tests: `per_node` CPUs on each of `n` nodes.
  [[nodiscard]] static CpuTopology uniform(std::size_t n,
                                           std::size_t per_node) {
    CpuTopology t;
    int cpu = 0;
    t.node_cpus.resize(n);
    for (auto& node : t.node_cpus)
      for (std::size_t c = 0; c < per_node; ++c) node.push_back(cpu++);
    return t;
  }

  /// Read the real topology from sysfs.  Falls back to one node holding
  /// hardware_concurrency() CPUs when sysfs is absent (non-Linux, sandbox)
  /// or inconsistent.
  [[nodiscard]] static CpuTopology detect() {
    CpuTopology t;
    for (int node = 0;; ++node) {
      char path[128];
      std::snprintf(path, sizeof(path),
                    "/sys/devices/system/node/node%d/cpulist", node);
      std::FILE* f = std::fopen(path, "re");
      if (f == nullptr) break;
      char buf[4096];
      std::string list;
      if (std::fgets(buf, sizeof(buf), f) != nullptr) list = buf;
      std::fclose(f);
      std::vector<int> cpus = parse_cpulist(list);
      if (!cpus.empty()) t.node_cpus.push_back(std::move(cpus));
    }
    if (t.node_cpus.empty()) {
      const unsigned hc = std::thread::hardware_concurrency();
      std::vector<int> all;
      for (unsigned c = 0; c < (hc == 0 ? 1 : hc); ++c)
        all.push_back(static_cast<int>(c));
      t.node_cpus.push_back(std::move(all));
    }
    return t;
  }
};

/// The per-worker placement plan the stealing scheduler executes.
struct WorkerPlacement {
  std::vector<std::size_t> home_shard;  ///< worker -> home problem-heap shard
  std::vector<int> node;                ///< worker -> NUMA node index
  std::vector<int> cpu;                 ///< worker -> CPU to pin to (-1 = none)
};

/// Plan homes for `threads` workers over `shards` heap shards on `topo`.
///
/// Workers fill nodes in CPU order (worker i takes the i-th CPU of the
/// flattened node-major CPU list, wrapping when oversubscribed), shards
/// are split into contiguous groups sized proportionally to each node's
/// worker count, and a worker's home shard round-robins within its node's
/// group.  With one node the group is [0, shards) and the rank equals the
/// worker index, so the plan is exactly the historical `i % shards`.
[[nodiscard]] inline WorkerPlacement plan_worker_placement(
    int threads, std::size_t shards, const CpuTopology& topo) {
  ERS_CHECK(threads >= 1 && shards >= 1 && topo.nodes() >= 1);
  WorkerPlacement plan;
  plan.home_shard.resize(static_cast<std::size_t>(threads));
  plan.node.resize(static_cast<std::size_t>(threads));
  plan.cpu.resize(static_cast<std::size_t>(threads));

  // Worker -> (node, cpu): node-major CPU order, wrapping.
  struct Slot {
    int node;
    int cpu;
  };
  std::vector<Slot> slots;
  for (std::size_t n = 0; n < topo.nodes(); ++n)
    for (const int c : topo.node_cpus[n])
      slots.push_back(Slot{static_cast<int>(n), c});
  ERS_CHECK(!slots.empty());
  std::vector<std::size_t> node_workers(topo.nodes(), 0);
  for (int i = 0; i < threads; ++i) {
    const Slot& s = slots[static_cast<std::size_t>(i) % slots.size()];
    plan.node[static_cast<std::size_t>(i)] = s.node;
    plan.cpu[static_cast<std::size_t>(i)] = s.cpu;
    ++node_workers[static_cast<std::size_t>(s.node)];
  }

  // Node -> contiguous shard group [start, start + len), len proportional
  // to the node's worker count (largest-remainder rounding keeps the total
  // exactly `shards`; workerless nodes get no group).
  const std::size_t T = static_cast<std::size_t>(threads);
  std::vector<std::size_t> group_start(topo.nodes(), 0);
  std::vector<std::size_t> group_len(topo.nodes(), 0);
  std::size_t assigned = 0;
  std::size_t active = 0;
  for (const std::size_t w : node_workers)
    if (w > 0) ++active;
  std::size_t seen_active = 0;
  for (std::size_t n = 0; n < topo.nodes(); ++n) {
    if (node_workers[n] == 0) continue;
    ++seen_active;
    std::size_t len = shards * node_workers[n] / T;
    if (len == 0) len = 1;
    if (seen_active == active) len = shards - assigned;  // absorb remainder
    if (assigned + len > shards) len = shards - assigned;
    group_start[n] = assigned;
    group_len[n] = len;
    assigned += len;
  }
  // Oversubscribed tail (more active nodes than shards): fold empty groups
  // onto the whole range so every worker still gets a valid home.
  for (std::size_t n = 0; n < topo.nodes(); ++n)
    if (node_workers[n] > 0 && group_len[n] == 0) {
      group_start[n] = 0;
      group_len[n] = shards;
    }

  // Worker -> home shard: round-robin within its node's group, by the
  // worker's rank among its node's workers.
  std::vector<std::size_t> node_rank(topo.nodes(), 0);
  for (int i = 0; i < threads; ++i) {
    const auto n = static_cast<std::size_t>(plan.node[static_cast<std::size_t>(i)]);
    const std::size_t rank = node_rank[n]++;
    plan.home_shard[static_cast<std::size_t>(i)] =
        group_start[n] + rank % group_len[n];
  }
  return plan;
}

}  // namespace ers::runtime
