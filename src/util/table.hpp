#pragma once
// Fixed-width text tables, used by the benchmark binaries to print
// paper-style rows (one table per figure).

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace ers {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&] {
      for (std::size_t c = 0; c < widths.size(); ++c)
        os << '+' << std::string(widths[c] + 2, '-');
      os << "+\n";
    };
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string{};
        os << "| " << s << std::string(widths[c] - s.size() + 1, ' ');
      }
      os << "|\n";
    };
    rule();
    line(headers_);
    rule();
    for (const auto& row : rows_) line(row);
    rule();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ers
