#pragma once
// Small statistics helpers used by the experiment harness and benches.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ers {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p in [0,1]; linear interpolation between order statistics.  Makes a copy;
/// intended for end-of-run reporting, not hot paths.
[[nodiscard]] inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double idx = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace ers
