#pragma once
// Minimal command-line flag parsing for the examples and harness binaries.
// Flags look like:  --name value   or   --name=value   or   --flag (boolean).

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ers {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg.erase(0, 2);
      if (auto eq = arg.find('='); eq != std::string::npos) {
        flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[arg] = argv[++i];
      } else {
        flags_[arg] = "";  // boolean flag
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return flags_.count(name) != 0;
  }

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    return std::stoll(it->second);
  }

  [[nodiscard]] double get_double(const std::string& name, double fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    return std::stod(it->second);
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ers
