#pragma once
// Deterministic random number generation.
//
// Two generators are provided:
//   * SplitMix64 — a stateless-style mixer used to derive child seeds and to
//     hash tree paths; this is what makes the implicit random game trees
//     (src/randomtree) reproducible without materializing them.
//   * Xoshiro256StarStar — the general-purpose stream generator used where a
//     long sequence is needed (workload generation, fuzzing).
//
// Neither is cryptographic; both are fully deterministic from their seed,
// which the experiment harness requires for bit-reproducible figures.

#include <array>
#include <cstdint>
#include <limits>

namespace ers {

/// One round of the splitmix64 output mixer (Steele, Lea & Flood 2014).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine a seed with a sequence of indices (e.g. a tree path) into one
/// well-mixed 64-bit hash.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return splitmix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// SplitMix64 as a stateful stream; also used to seed Xoshiro.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna).  Fast, 256-bit state, passes BigCrush.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256StarStar(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be nonzero.  Uses rejection
  /// sampling (Lemire-style threshold) to avoid modulo bias.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_;
};

}  // namespace ers
