#pragma once
// Internal invariant checking.  ERS_CHECK is active in all build types (the
// scheduling engine's correctness matters more than the nanoseconds); the
// expensive structural audits use ERS_DCHECK, compiled out of release builds.

#include <cstdio>
#include <cstdlib>

namespace ers::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "ERS_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace ers::detail

#define ERS_CHECK(expr)                                            \
  do {                                                             \
    if (!(expr)) ::ers::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifndef NDEBUG
#define ERS_DCHECK(expr) ERS_CHECK(expr)
#else
#define ERS_DCHECK(expr) \
  do {                   \
  } while (0)
#endif
