#pragma once
// Game values and windows.
//
// Game-tree algorithms negate values at every ply (negmax convention), so the
// value domain must be symmetric around zero: naive use of INT_MIN breaks
// `-v`.  All search code in this library uses ers::Value with the bounds
// below; ers::negate is total on [-kValueInf, kValueInf].

#include <algorithm>
#include <cstdint>
#include <string>

namespace ers {

/// Signed game value from the side-to-move's point of view.
using Value = std::int32_t;

/// Largest magnitude a static evaluator may return.
inline constexpr Value kValueMax = 1'000'000'000;

/// "Infinity" used for open window bounds; strictly greater than any
/// evaluator output so a full-width window never cuts.
inline constexpr Value kValueInf = kValueMax + 1;

/// Negate a value; total on [-kValueInf, kValueInf].
[[nodiscard]] constexpr Value negate(Value v) noexcept { return -v; }

/// True if v is representable as a static-evaluation result.
[[nodiscard]] constexpr bool is_valid_value(Value v) noexcept {
  return v >= -kValueMax && v <= kValueMax;
}

/// An (alpha, beta) search window, alpha < beta.  The window is *exclusive*
/// of its bounds in the usual alpha-beta sense: values <= alpha fail low,
/// values >= beta fail high.
struct Window {
  Value alpha = -kValueInf;
  Value beta = kValueInf;

  /// The child's window under negmax: (-beta, -alpha).
  [[nodiscard]] constexpr Window flipped() const noexcept {
    return Window{negate(beta), negate(alpha)};
  }
  /// Narrow alpha to at least `v`.
  [[nodiscard]] constexpr Window raised(Value v) const noexcept {
    return Window{std::max(alpha, v), beta};
  }
  [[nodiscard]] constexpr bool is_open() const noexcept { return alpha < beta; }
  [[nodiscard]] constexpr bool cuts(Value v) const noexcept { return v >= beta; }
};

[[nodiscard]] constexpr Window full_window() noexcept { return Window{}; }

/// Human-readable value (renders the infinities symbolically).
[[nodiscard]] inline std::string value_to_string(Value v) {
  if (v >= kValueInf) return "+inf";
  if (v <= -kValueInf) return "-inf";
  return std::to_string(v);
}

}  // namespace ers
